// Template member implementations for Adversary.
#pragma once

#include <type_traits>
#include <utility>

#include "common/combinatorics.hpp"

namespace rqs {

template <typename Fn>
bool Adversary::for_each_maximal_element(Fn&& fn) const {
  if (is_threshold()) {
    return for_each_subset_of_size(ProcessSet::universe(n_), threshold_k(),
                                   std::forward<Fn>(fn));
  }
  for (const ProcessSet m : maximal_) {
    if constexpr (std::is_void_v<decltype(fn(m))>) {
      fn(m);
    } else {
      if (!fn(m)) return false;
    }
  }
  return true;
}

template <typename Fn>
bool Adversary::for_each_element(Fn&& fn) const {
  if (is_threshold()) {
    const ProcessSet everyone = ProcessSet::universe(n_);
    for (std::size_t k = 0; k <= threshold_k(); ++k) {
      if (!for_each_subset_of_size(everyone, k, fn)) return false;
    }
    return true;
  }
  for (const ProcessSet m : maximal_) {
    if (!for_each_subset(m, fn)) return false;
  }
  return true;
}

}  // namespace rqs
