// Template member implementations for BasicAdversary: the Fn-parameterized
// enumerators live here (they cannot be covered by the explicit width
// instantiations in adversary.cpp) together with the width-generic member
// definitions those instantiations pick up.
#pragma once

#include <type_traits>
#include <utility>

#include "common/combinatorics.hpp"

namespace rqs {

template <class Set>
template <typename Fn>
bool BasicAdversary<Set>::for_each_maximal_element(Fn&& fn) const {
  if (is_threshold()) {
    return for_each_subset_of_size(Set::universe(n_), threshold_k(),
                                   std::forward<Fn>(fn));
  }
  for (const Set& m : maximal_) {
    if constexpr (std::is_void_v<decltype(fn(m))>) {
      fn(m);
    } else {
      if (!fn(m)) return false;
    }
  }
  return true;
}

template <class Set>
template <typename Fn>
bool BasicAdversary<Set>::for_each_element(Fn&& fn) const {
  if (is_threshold()) {
    const Set everyone = Set::universe(n_);
    for (std::size_t k = 0; k <= threshold_k(); ++k) {
      if (!for_each_subset_of_size(everyone, k, fn)) return false;
    }
    return true;
  }
  for (const Set& m : maximal_) {
    if (!for_each_subset(m, fn)) return false;
  }
  return true;
}

}  // namespace rqs
