// Quantitative analysis of refined quorum systems: availability and load.
//
// Section 6 of the paper lists "the load and availability of RQS [Naor &
// Wool]" as an open research direction; this module provides the classic
// measures, refined per quorum class:
//
//  * availability(p): probability that at least one quorum is fully
//    correct when every process fails independently with probability p —
//    per class, this gives the probability of the 1-round/2-round/3-round
//    (resp. 2/3/4-delay) best case, and from it the *expected best-case
//    latency* of the storage and consensus algorithms;
//  * availability_sampled(p): the Monte-Carlo estimator of the same
//    quantity for systems too large for the 2^n exhaustive sum — the only
//    availability path usable at the hierarchical 128/256-process scale;
//  * load: the access probability of the busiest process under a
//    probabilistic strategy picking quorums (Naor-Wool). We compute the
//    exact load of given strategies and a balanced strategy found by
//    multiplicative-weights descent (an upper bound on the optimal load),
//    plus the classic lower bound max(1/c(S), m(S)/n).
//
// Every function is templated on the set width and instantiated for
// ProcessSet and WideProcessSet; the Set parameter deduces from the system
// argument, so call sites are width-agnostic.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/rqs.hpp"

namespace rqs {

/// Probability that at least one quorum of class <= cls is fully correct
/// when each process fails independently with probability p. Exact, by
/// enumerating failure patterns grouped over the 2^n subsets for
/// n <= 24 (hard-checked at any width — use availability_sampled beyond).
template <class Set>
[[nodiscard]] double availability(const BasicRefinedQuorumSystem<Set>& rqs,
                                  double p,
                                  QuorumClass cls = QuorumClass::Class3);

/// Monte-Carlo estimate of availability() from `samples` independent
/// failure patterns drawn with per-process failure probability p. The
/// standard error is sqrt(a(1-a)/samples); 10^5 samples give ~3 decimal
/// digits. Works at any universe size (this is the availability path for
/// the 128/256-process hierarchical systems).
template <class Set>
[[nodiscard]] double availability_sampled(
    const BasicRefinedQuorumSystem<Set>& rqs, double p, std::size_t samples,
    Rng& rng, QuorumClass cls = QuorumClass::Class3);

/// Expected best-case rounds of a storage operation at failure probability
/// p: 1, 2 or 3 depending on the best available class (conditioned on the
/// system being available at all; returns 0 expectation mass for dead
/// configurations via the `dead` output).
struct ExpectedLatency {
  double storage_rounds{0.0};    ///< E[rounds | some quorum alive]
  double consensus_delays{0.0};  ///< E[delays | some quorum alive]
  double unavailable{0.0};       ///< P[no quorum fully correct]
};
template <class Set>
[[nodiscard]] ExpectedLatency expected_latency(
    const BasicRefinedQuorumSystem<Set>& rqs, double p);

/// A probabilistic access strategy: w[i] is the probability of picking
/// quorum i (must sum to ~1 over the system's quorums).
using Strategy = std::vector<double>;

/// The load of `strategy`: max over processes of the probability that the
/// process is accessed, i.e. max_j sum_{Q containing j} w_Q.
template <class Set>
[[nodiscard]] double load_of(const BasicRefinedQuorumSystem<Set>& rqs,
                             const Strategy& strategy);

/// Uniform strategy over all quorums (or over a class).
template <class Set>
[[nodiscard]] Strategy uniform_strategy(const BasicRefinedQuorumSystem<Set>& rqs,
                                        QuorumClass cls = QuorumClass::Class3);

/// Searches for a low-load strategy by multiplicative weights (iterations
/// of down-weighting quorums that touch the currently busiest processes).
/// Returns the best strategy found; its load_of() value is an upper bound
/// on the system load L(S).
template <class Set>
[[nodiscard]] Strategy balanced_strategy(
    const BasicRefinedQuorumSystem<Set>& rqs, std::size_t iterations = 2000);

/// The Naor-Wool lower bound on the load of any strategy:
/// max(1/c(S), m(S)/n) where c(S) is the minimal quorum cardinality and
/// m(S)... here instantiated as: max over processes is at least
/// (smallest quorum size)/n, and at least 1/(smallest quorum size)... we
/// return max(1/n * min|Q|, 1/min|Q|) folded to the classic
/// max(1/c(S), c(S)/n).
template <class Set>
[[nodiscard]] double load_lower_bound(const BasicRefinedQuorumSystem<Set>& rqs);

// Instantiated once in analysis.cpp for the two supported widths.
#define RQS_ANALYSIS_EXTERN(Set)                                               \
  extern template double availability<Set>(                                    \
      const BasicRefinedQuorumSystem<Set>&, double, QuorumClass);              \
  extern template double availability_sampled<Set>(                            \
      const BasicRefinedQuorumSystem<Set>&, double, std::size_t, Rng&,         \
      QuorumClass);                                                            \
  extern template ExpectedLatency expected_latency<Set>(                       \
      const BasicRefinedQuorumSystem<Set>&, double);                           \
  extern template double load_of<Set>(const BasicRefinedQuorumSystem<Set>&,    \
                                      const Strategy&);                        \
  extern template Strategy uniform_strategy<Set>(                              \
      const BasicRefinedQuorumSystem<Set>&, QuorumClass);                      \
  extern template Strategy balanced_strategy<Set>(                             \
      const BasicRefinedQuorumSystem<Set>&, std::size_t);                      \
  extern template double load_lower_bound<Set>(                                \
      const BasicRefinedQuorumSystem<Set>&);
RQS_ANALYSIS_EXTERN(ProcessSet)
RQS_ANALYSIS_EXTERN(WideProcessSet)
#undef RQS_ANALYSIS_EXTERN

}  // namespace rqs
