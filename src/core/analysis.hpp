// Quantitative analysis of refined quorum systems: availability and load.
//
// Section 6 of the paper lists "the load and availability of RQS [Naor &
// Wool]" as an open research direction; this module provides the classic
// measures, refined per quorum class:
//
//  * availability(p): probability that at least one quorum is fully
//    correct when every process fails independently with probability p —
//    per class, this gives the probability of the 1-round/2-round/3-round
//    (resp. 2/3/4-delay) best case, and from it the *expected best-case
//    latency* of the storage and consensus algorithms;
//  * load: the access probability of the busiest process under a
//    probabilistic strategy picking quorums (Naor-Wool). We compute the
//    exact load of given strategies and a balanced strategy found by
//    multiplicative-weights descent (an upper bound on the optimal load),
//    plus the classic lower bound max(1/c(S), m(S)/n).
#pragma once

#include <vector>

#include "core/rqs.hpp"

namespace rqs {

/// Probability that at least one quorum of class <= cls is fully correct
/// when each process fails independently with probability p. Exact, by
/// enumerating failure patterns grouped over the 2^n subsets for
/// n <= 24 (the systems in this library are small).
[[nodiscard]] double availability(const RefinedQuorumSystem& rqs, double p,
                                  QuorumClass cls = QuorumClass::Class3);

/// Expected best-case rounds of a storage operation at failure probability
/// p: 1, 2 or 3 depending on the best available class (conditioned on the
/// system being available at all; returns 0 expectation mass for dead
/// configurations via the `dead` output).
struct ExpectedLatency {
  double storage_rounds{0.0};    ///< E[rounds | some quorum alive]
  double consensus_delays{0.0};  ///< E[delays | some quorum alive]
  double unavailable{0.0};       ///< P[no quorum fully correct]
};
[[nodiscard]] ExpectedLatency expected_latency(const RefinedQuorumSystem& rqs,
                                               double p);

/// A probabilistic access strategy: w[i] is the probability of picking
/// quorum i (must sum to ~1 over the system's quorums).
using Strategy = std::vector<double>;

/// The load of `strategy`: max over processes of the probability that the
/// process is accessed, i.e. max_j sum_{Q containing j} w_Q.
[[nodiscard]] double load_of(const RefinedQuorumSystem& rqs,
                             const Strategy& strategy);

/// Uniform strategy over all quorums (or over a class).
[[nodiscard]] Strategy uniform_strategy(const RefinedQuorumSystem& rqs,
                                        QuorumClass cls = QuorumClass::Class3);

/// Searches for a low-load strategy by multiplicative weights (iterations
/// of down-weighting quorums that touch the currently busiest processes).
/// Returns the best strategy found; its load_of() value is an upper bound
/// on the system load L(S).
[[nodiscard]] Strategy balanced_strategy(const RefinedQuorumSystem& rqs,
                                         std::size_t iterations = 2000);

/// The Naor-Wool lower bound on the load of any strategy:
/// max(1/c(S), m(S)/n) where c(S) is the minimal quorum cardinality and
/// m(S)... here instantiated as: max over processes is at least
/// (smallest quorum size)/n, and at least 1/(smallest quorum size)... we
/// return max(1/n * min|Q|, 1/min|Q|) folded to the classic
/// max(1/c(S), c(S)/n).
[[nodiscard]] double load_lower_bound(const RefinedQuorumSystem& rqs);

}  // namespace rqs
