// Width instantiations of BasicAdversary. The member definitions are
// templates (this file provides them and stamps out the two supported
// widths); everything width-generic funnels through common/combinatorics.
#include "core/adversary.hpp"

#include <algorithm>
#include <cassert>

#include "common/combinatorics.hpp"

namespace rqs {

namespace {

// Materializing a threshold view beyond this many elements is a bug in the
// caller (the analytic threshold paths never need the view); hard-fail
// instead of attempting a multi-gigabyte allocation.
constexpr std::uint64_t kMaxMaterializedView = std::uint64_t{1} << 24;

}  // namespace

template <class Set>
BasicAdversary<Set>::BasicAdversary(std::size_t n, std::vector<Set> elements)
    : n_(n), maximal_(keep_maximal_sets(std::move(elements))) {
  if (n > Set::kMaxProcesses) {
    detail::process_set_bounds_failure(n, Set::kMaxProcesses,
                                       "adversary universe size");
  }
  for ([[maybe_unused]] const Set& m : maximal_) {
    assert(m.subset_of(Set::universe(n)));
  }
}

template <class Set>
BasicAdversary<Set> BasicAdversary<Set>::threshold(std::size_t n, std::size_t k) {
  if (n > Set::kMaxProcesses) {
    detail::process_set_bounds_failure(n, Set::kMaxProcesses,
                                       "adversary universe size");
  }
  assert(k <= n);
  return BasicAdversary{n, k};
}

template <class Set>
BasicAdversary<Set> BasicAdversary<Set>::none(std::size_t n) {
  return BasicAdversary{n, std::vector<Set>{}};
}

template <class Set>
std::vector<Set> BasicAdversary<Set>::maximal_elements() const {
  if (!is_threshold()) return maximal_;
  std::vector<Set> out;
  out.reserve(binomial(n_, threshold_k()));
  for_each_subset_of_size(Set::universe(n_), threshold_k(),
                          [&out](const Set& s) { out.push_back(s); });
  return out;
}

template <class Set>
std::span<const Set> BasicAdversary<Set>::maximal_view() const {
  if (!is_threshold()) return maximal_;
  if (!threshold_view_built_) {
    const std::uint64_t count = binomial(n_, threshold_k());
    if (count >= kMaxMaterializedView) {
      detail::process_set_bounds_failure(
          static_cast<std::size_t>(count >> 32), 0,
          "threshold maximal view C(n,k)>>32 (use the analytic paths)");
    }
    threshold_view_.reserve(count);
    for_each_subset_of_size(
        Set::universe(n_), threshold_k(),
        [this](const Set& s) { threshold_view_.push_back(s); });
    threshold_view_built_ = true;
  }
  return threshold_view_;
}

template <class Set>
Set BasicAdversary<Set>::sample_maximal(Rng& rng) const {
  if (is_threshold()) {
    // Uniform k-subset of {0..n-1} by a partial Fisher-Yates over ids.
    Set out;
    std::vector<ProcessId> ids(n_);
    for (std::size_t i = 0; i < n_; ++i) ids[i] = static_cast<ProcessId>(i);
    for (std::size_t i = 0; i < threshold_k(); ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform(static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(n_ - 1)));
      std::swap(ids[i], ids[j]);
      out.insert(ids[i]);
    }
    return out;
  }
  if (maximal_.empty()) return {};
  return maximal_[static_cast<std::size_t>(
      rng.uniform(0, static_cast<std::int64_t>(maximal_.size()) - 1))];
}

template <class Set>
bool BasicAdversary<Set>::contains(const Set& x) const {
  if (is_threshold()) {
    // Members outside the universe disqualify x, exactly as on the general
    // path where every maximal element lives inside the universe.
    return x.subset_of(Set::universe(n_)) && x.size() <= threshold_k();
  }
  return std::any_of(maximal_.begin(), maximal_.end(),
                     [&x](const Set& m) { return x.subset_of(m); });
}

template <class Set>
bool BasicAdversary<Set>::is_large(const Set& x) const {
  if (is_threshold()) {
    // A member outside the universe cannot be covered by any union of
    // in-universe elements, so x is large — as on the general path.
    if (!x.subset_of(Set::universe(n_))) return true;
    // Within the universe, x escapes every union of two size-<=k sets iff
    // |x| >= 2k+1.
    return x.size() >= 2 * threshold_k() + 1;
  }
  // Checking maximal pairs suffices: any B1 u B2 is covered by a union of
  // maximal elements. Note B = {} makes every set vacuously large and
  // B = {{}} makes exactly the non-empty sets large.
  for (const Set& b1 : maximal_) {
    for (const Set& b2 : maximal_) {
      if (x.subset_of(b1 | b2)) return false;
    }
  }
  return true;
}

template <class Set>
std::string BasicAdversary<Set>::to_string() const {
  if (is_threshold()) {
    return "B_" + std::to_string(threshold_k()) + " over " +
           std::to_string(n_) + " processes";
  }
  std::string out = "{";
  bool first = true;
  for (const Set& m : maximal_) {
    if (!first) out += ", ";
    out += m.to_string();
    first = false;
  }
  out += "} (maximal elements) over " + std::to_string(n_) + " processes";
  return out;
}

template class BasicAdversary<ProcessSet>;
template class BasicAdversary<WideProcessSet>;

}  // namespace rqs
