#include "core/adversary.hpp"

#include <algorithm>
#include <cassert>

#include "common/combinatorics.hpp"

namespace rqs {

Adversary::Adversary(std::size_t n, std::vector<ProcessSet> elements)
    : n_(n), maximal_(keep_maximal_sets(std::move(elements))) {
  assert(n <= ProcessSet::kMaxProcesses);
  for ([[maybe_unused]] const ProcessSet m : maximal_) {
    assert(m.subset_of(ProcessSet::universe(n)));
  }
}

Adversary Adversary::threshold(std::size_t n, std::size_t k) {
  assert(n <= ProcessSet::kMaxProcesses);
  assert(k <= n);
  return Adversary{n, k};
}

Adversary Adversary::none(std::size_t n) {
  return Adversary{n, std::vector<ProcessSet>{}};
}

std::vector<ProcessSet> Adversary::maximal_elements() const {
  if (!is_threshold()) return maximal_;
  std::vector<ProcessSet> out;
  out.reserve(binomial(n_, threshold_k()));
  for_each_subset_of_size(ProcessSet::universe(n_), threshold_k(),
                          [&out](ProcessSet s) { out.push_back(s); });
  return out;
}

std::span<const ProcessSet> Adversary::maximal_view() const {
  if (!is_threshold()) return maximal_;
  if (!threshold_view_built_) {
    threshold_view_.reserve(binomial(n_, threshold_k()));
    for_each_subset_of_size(
        ProcessSet::universe(n_), threshold_k(),
        [this](ProcessSet s) { threshold_view_.push_back(s); });
    threshold_view_built_ = true;
  }
  return threshold_view_;
}

ProcessSet Adversary::sample_maximal(Rng& rng) const {
  if (is_threshold()) {
    // Uniform k-subset of {0..n-1} by a partial Fisher-Yates over ids.
    ProcessSet out;
    std::vector<ProcessId> ids(n_);
    for (std::size_t i = 0; i < n_; ++i) ids[i] = static_cast<ProcessId>(i);
    for (std::size_t i = 0; i < threshold_k(); ++i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform(static_cast<std::int64_t>(i),
                      static_cast<std::int64_t>(n_ - 1)));
      std::swap(ids[i], ids[j]);
      out.insert(ids[i]);
    }
    return out;
  }
  if (maximal_.empty()) return {};
  return maximal_[static_cast<std::size_t>(
      rng.uniform(0, static_cast<std::int64_t>(maximal_.size()) - 1))];
}

bool Adversary::contains(ProcessSet x) const {
  if (is_threshold()) {
    // Members outside the universe disqualify x, exactly as on the general
    // path where every maximal element lives inside the universe.
    return x.subset_of(ProcessSet::universe(n_)) && x.size() <= threshold_k();
  }
  return std::any_of(maximal_.begin(), maximal_.end(),
                     [x](ProcessSet m) { return x.subset_of(m); });
}

bool Adversary::is_large(ProcessSet x) const {
  if (is_threshold()) {
    // A member outside the universe cannot be covered by any union of
    // in-universe elements, so x is large — as on the general path.
    if (!x.subset_of(ProcessSet::universe(n_))) return true;
    // Within the universe, x escapes every union of two size-<=k sets iff
    // |x| >= 2k+1.
    return x.size() >= 2 * threshold_k() + 1;
  }
  // Checking maximal pairs suffices: any B1 u B2 is covered by a union of
  // maximal elements. Note B = {} makes every set vacuously large and
  // B = {{}} makes exactly the non-empty sets large.
  for (const ProcessSet b1 : maximal_) {
    for (const ProcessSet b2 : maximal_) {
      if (x.subset_of(b1 | b2)) return false;
    }
  }
  return true;
}

std::string Adversary::to_string() const {
  if (is_threshold()) {
    return "B_" + std::to_string(threshold_k()) + " over " +
           std::to_string(n_) + " processes";
  }
  std::string out = "{";
  bool first = true;
  for (const ProcessSet m : maximal_) {
    if (!first) out += ", ";
    out += m.to_string();
    first = false;
  }
  out += "} (maximal elements) over " + std::to_string(n_) + " processes";
  return out;
}

}  // namespace rqs
