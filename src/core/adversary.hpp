// Adversary structures (Definition 1 of the paper).
//
// An adversary B for a set S is a set of subsets of S closed under taking
// subsets: B in B and B' subset of B implies B' in B. B describes which
// coalitions of processes may simultaneously be Byzantine.
//
// Representation: because B is downward closed it is fully described by its
// maximal elements. We store either
//   * an explicit list of maximal elements (general adversary), or
//   * a threshold bound k (the paper's B_k = all subsets of size <= k),
// and answer all queries without materializing the (possibly huge) downward
// closure. The paper's Definition 5 notions of *basic* subset (not in B)
// and *large* subset (not covered by the union of any two elements of B)
// are first-class queries here because both protocols use them pervasively.
//
// The class is templated on the process-set width: Adversary
// (= BasicAdversary<ProcessSet>) is the historical 64-process form the
// protocol layers use; WideAdversary (= BasicAdversary<WideProcessSet>)
// covers universes up to 256 processes for the scale-out analysis paths.
// Threshold adversaries stay fully analytic at any width, so B_k over 256
// processes never materializes its C(256, k) maximal elements.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/process_set.hpp"
#include "common/rng.hpp"

namespace rqs {

template <class Set>
class BasicAdversary {
 public:
  /// General adversary from an explicit list of elements over universe
  /// {0..n-1}. The list is normalized: non-maximal elements are dropped.
  /// An empty list yields the degenerate adversary B = {} (no subset,
  /// not even the empty one, can be Byzantine). Pass {{}} (a list holding
  /// the empty set) for the crash-only adversary B = { {} }.
  BasicAdversary(std::size_t n, std::vector<Set> elements);

  /// The k-bounded threshold adversary B_k: all subsets of size <= k.
  /// threshold(n, 0) is the crash-only adversary { {} }.
  [[nodiscard]] static BasicAdversary threshold(std::size_t n, std::size_t k);

  /// The adversary B = {} containing no element at all. With it Property 1
  /// holds vacuously; the paper notes Property 1 implies Property 3 then.
  [[nodiscard]] static BasicAdversary none(std::size_t n);

  [[nodiscard]] std::size_t universe_size() const noexcept { return n_; }
  [[nodiscard]] bool is_threshold() const noexcept { return threshold_k_.has_value(); }
  /// The bound k for threshold adversaries; meaningless otherwise.
  [[nodiscard]] std::size_t threshold_k() const noexcept { return threshold_k_.value(); }

  /// Maximal elements as a fresh vector. For threshold adversaries this
  /// materializes all C(n, k) size-k subsets (use maximal_view() or
  /// for_each_maximal_element() instead where possible); for general
  /// adversaries it copies the stored list.
  [[nodiscard]] std::vector<Set> maximal_elements() const;

  /// Maximal elements as a non-owning view. For general adversaries this is
  /// the stored list (zero cost); for threshold adversaries the C(n, k)
  /// subsets are materialized once on first call and cached, so repeated
  /// callers (e.g. the property checkers' B loops) never re-allocate.
  /// The view is invalidated by destroying or moving the adversary.
  /// Hard-fails when C(n, k) is too large to materialize (wide threshold
  /// adversaries answer every property query analytically instead).
  [[nodiscard]] std::span<const Set> maximal_view() const;

  /// Calls fn(B) for every maximal element without ever materializing the
  /// list, even for threshold adversaries. `fn` may return void, or bool
  /// where false stops enumeration early (and makes this return false).
  template <typename Fn>
  bool for_each_maximal_element(Fn&& fn) const;

  /// True iff X is an element of B (i.e., X may be exactly the set of
  /// Byzantine processes in some execution). Sets with members outside the
  /// universe {0..n-1} are never elements, for threshold and general
  /// adversaries alike.
  [[nodiscard]] bool contains(const Set& x) const;

  /// Definition 5: X is *basic* iff X is not in B. Every basic subset
  /// contains at least one benign process in every execution (Lemma 1).
  [[nodiscard]] bool is_basic(const Set& x) const { return !contains(x); }

  /// Definition 5: X is *large* iff X is not a subset of the union of any
  /// two elements of B. Every large subset contains a basic subset of
  /// benign processes in every execution (Lemma 2).
  [[nodiscard]] bool is_large(const Set& x) const;

  /// Draws a uniformly random *maximal* element of B — the worst coalition
  /// the adversary can field, which is what safety stress tests want to
  /// instantiate (scenario generators bias Byzantine role assignment toward
  /// these). Threshold adversaries sample a k-subset directly, without
  /// materializing the C(n, k) view. Returns the empty set for the
  /// degenerate adversaries none() and { {} }.
  [[nodiscard]] Set sample_maximal(Rng& rng) const;

  /// Enumerates every element of B (the full downward closure) and calls
  /// fn(B) for each, stopping early if fn returns false. Exponential in the
  /// size of maximal elements; intended for the small structures of the
  /// paper's examples and for the protocols' existential predicates.
  /// Elements reachable from several maximal elements are visited once per
  /// maximal element; callers use this only for existential search, where
  /// duplicates are harmless.
  template <typename Fn>
  bool for_each_element(Fn&& fn) const;

  /// A human-readable description ("B_2 over 7 processes" or the list).
  [[nodiscard]] std::string to_string() const;

 private:
  BasicAdversary(std::size_t n, std::size_t k) : n_(n), threshold_k_(k) {}

  std::size_t n_;
  std::optional<std::size_t> threshold_k_;  // engaged => threshold adversary
  std::vector<Set> maximal_;                // general adversary only
  // Lazily-built maximal_view() cache for threshold adversaries. Mutable
  // because building the view does not change the adversary's value; not
  // synchronized (the library is single-threaded).
  mutable std::vector<Set> threshold_view_;
  mutable bool threshold_view_built_{false};
};

/// The protocol-width adversary (universes up to 64 processes).
using Adversary = BasicAdversary<ProcessSet>;
/// The analysis-width adversary (universes up to 256 processes).
using WideAdversary = BasicAdversary<WideProcessSet>;

// Instantiated once in adversary.cpp for the two supported widths.
extern template class BasicAdversary<ProcessSet>;
extern template class BasicAdversary<WideProcessSet>;

}  // namespace rqs

#include "core/adversary_inl.hpp"
