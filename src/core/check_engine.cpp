#include "core/check_engine.hpp"

#include <algorithm>
#include <cassert>

namespace rqs {

template <class Set>
void BasicCheckEngine<Set>::init_adversary_state() {
  threshold_ = adversary_->is_threshold();
  if (threshold_) {
    k_ = adversary_->threshold_k();
  } else {
    maximal_ = adversary_->maximal_view();
    for (const Set m : maximal_) {
      max_elem_size_ = std::max(max_elem_size_, m.size());
    }
  }
  qc1_inter_ = Set::universe(adversary_->universe_size());
}

template <class Set>
BasicCheckEngine<Set>::BasicCheckEngine(const BasicRefinedQuorumSystem<Set>& sys)
    : adversary_(&sys.adversary()),
      qc1_ids_(sys.class1_ids()),
      qc2_ids_(sys.class2_ids()) {
  sets_.reserve(sys.quorum_count());
  for (const BasicQuorum<Set>& q : sys.quorums()) sets_.push_back(q.set);
  init_adversary_state();
  qc1_sets_.reserve(qc1_ids_.size());
  for (const QuorumId id : qc1_ids_) {
    qc1_sets_.push_back(sets_[id]);
    qc1_inter_ &= sets_[id];
  }
}

template <class Set>
BasicCheckEngine<Set>::BasicCheckEngine(const BasicAdversary<Set>& adversary,
                                        std::vector<Set> sets)
    : adversary_(&adversary), sets_(std::move(sets)) {
  assert(sets_.size() <= 20 && "mask-parameterized engine is for <= 20 sets");
  [[maybe_unused]] const Set everyone =
      Set::universe(adversary_->universe_size());
  for ([[maybe_unused]] const Set s : sets_) {
    assert(s.subset_of(everyone));
  }
  init_adversary_state();
}

template <class Set>
bool BasicCheckEngine<Set>::is_basic(Set x) const {
  // Engine queries are intersections of quorum sets, all inside the
  // universe, so the threshold form reduces to a popcount comparison.
  if (threshold_) return x.size() > k_;
  if (x.size() > max_elem_size_) return true;
  for (const Set m : maximal_) {
    if (x.subset_of(m)) return false;
  }
  return true;
}

template <class Set>
void BasicCheckEngine<Set>::build_unions() const {
  std::vector<Set> all;
  all.reserve(maximal_.size() * (maximal_.size() + 1) / 2);
  for (std::size_t i = 0; i < maximal_.size(); ++i) {
    for (std::size_t j = i; j < maximal_.size(); ++j) {
      all.push_back(maximal_[i] | maximal_[j]);
    }
  }
  unions_ = keep_maximal_sets(std::move(all));
  for (const Set u : unions_) {
    max_union_size_ = std::max(max_union_size_, u.size());
  }
  unions_built_ = true;
}

template <class Set>
void BasicCheckEngine<Set>::ensure_pair_table() const {
  if (!pair_inter_.empty()) return;
  const std::size_t m = sets_.size();
  pair_inter_.resize(m * m);
  for (std::size_t a = 0; a < m; ++a) {
    for (std::size_t b = 0; b < m; ++b) {
      pair_inter_[a * m + b] = sets_[a] & sets_[b];
    }
  }
}

template <class Set>
bool BasicCheckEngine<Set>::is_large(Set x) const {
  if (threshold_) return x.size() >= 2 * k_ + 1;
  if (!unions_built_) build_unions();
  if (x.size() > max_union_size_) return true;
  for (const Set u : unions_) {
    if (x.subset_of(u)) return false;
  }
  return true;
}

template <class Set>
bool BasicCheckEngine<Set>::p3a(Set inter, Set b) const {
  return is_basic(inter - b);
}

template <class Set>
bool BasicCheckEngine<Set>::p3b(Set inter, Set b, std::span<const Set> qc1_sets,
                                Set qc1_inter) const {
  if (qc1_sets.empty()) return false;
  // Sufficient fast path: if even the intersection of ALL class 1 quorums
  // meets inter \ B, then certainly every individual class 1 quorum does.
  if (!((qc1_inter & inter) - b).empty()) return true;
  for (const Set q1 : qc1_sets) {
    if (((q1 & inter) - b).empty()) return false;
  }
  return true;
}

template <class Set>
bool BasicCheckEngine<Set>::p3_pair_holds(Set inter,
                                          std::span<const Set> qc1_sets,
                                          Set qc1_inter) const {
  for (const Set b : maximal_) {
    if (!p3a(inter, b) && !p3b(inter, b, qc1_sets, qc1_inter)) return false;
  }
  return true;
}

template <class Set>
bool BasicCheckEngine<Set>::p3_pair_holds_threshold(
    Set inter, std::span<const Set> qc1_sets) const {
  if (inter.size() >= 2 * k_ + 1) return true;
  if (qc1_sets.empty()) return false;
  return std::all_of(qc1_sets.begin(), qc1_sets.end(), [&](Set q1) {
    return (q1 & inter).size() >= k_ + 1;
  });
}

template <class Set>
bool BasicCheckEngine<Set>::check_property1(BasicCheckResult<Set>& out,
                                            std::size_t max) const {
  bool ok = true;
  for (QuorumId a = 0; a < sets_.size(); ++a) {
    for (QuorumId b = a; b < sets_.size(); ++b) {
      const Set inter = sets_[a] & sets_[b];
      if (!is_basic(inter)) {
        ok = false;
        out.violations.push_back(BasicPropertyViolation<Set>{
            .property = 1,
            .q_a = a,
            .q_b = b,
            .q_c = kInvalidQuorum,
            .b1 = inter,
            .b2 = {},
            .detail = "Q" + std::to_string(a) + " n Q" + std::to_string(b) +
                      " = " + inter.to_string() + " is an element of B"});
        if (max != 0 && out.violations.size() >= max) return false;
      }
    }
  }
  return ok;
}

template <class Set>
bool BasicCheckEngine<Set>::check_property2(BasicCheckResult<Set>& out,
                                            std::size_t max) const {
  bool ok = true;
  for (std::size_t i = 0; i < qc1_ids_.size(); ++i) {
    for (std::size_t j = i; j < qc1_ids_.size(); ++j) {
      const Set q1q1 = qc1_sets_[i] & qc1_sets_[j];
      for (QuorumId c = 0; c < sets_.size(); ++c) {
        const Set inter = q1q1 & sets_[c];
        if (!is_large(inter)) {
          ok = false;
          out.violations.push_back(BasicPropertyViolation<Set>{
              .property = 2,
              .q_a = qc1_ids_[i],
              .q_b = qc1_ids_[j],
              .q_c = c,
              .b1 = inter,
              .b2 = {},
              .detail = "Q" + std::to_string(qc1_ids_[i]) + " n Q" +
                        std::to_string(qc1_ids_[j]) + " n Q" +
                        std::to_string(c) + " = " + inter.to_string() +
                        " is covered by a union of two elements of B"});
          if (max != 0 && out.violations.size() >= max) return false;
        }
      }
    }
  }
  return ok;
}

template <class Set>
bool BasicCheckEngine<Set>::check_property3(BasicCheckResult<Set>& out,
                                            std::size_t max) const {
  bool ok = true;
  // Intersections proven to satisfy P3. Both disjuncts depend on (Q2, Q)
  // only through I = Q2 n Q and are monotone in I, so any pair whose
  // intersection contains a proven one is skipped — pruning never skips a
  // violating pair, keeping the violation list identical to the naive
  // checker's.
  std::vector<Set> held;
  for (const QuorumId q2id : qc2_ids_) {
    const Set q2 = sets_[q2id];
    for (QuorumId qid = 0; qid < sets_.size(); ++qid) {
      const Set inter = q2 & sets_[qid];
      if (threshold_) {
        if (!p3_pair_holds_threshold(inter, qc1_sets_)) {
          ok = false;
          out.violations.push_back(BasicPropertyViolation<Set>{
              .property = 3,
              .q_a = q2id,
              .q_b = qid,
              .q_c = kInvalidQuorum,
              .b1 = {},
              .b2 = {},
              .detail = "threshold check: |Q" + std::to_string(q2id) +
                        " n Q" + std::to_string(qid) + "| = " +
                        std::to_string(inter.size()) + " < 2k+1 and some"
                        " class 1 quorum meets the intersection in <= k"
                        " elements"});
          if (max != 0 && out.violations.size() >= max) return false;
        }
        continue;
      }
      const bool pruned =
          std::any_of(held.begin(), held.end(),
                      [inter](Set h) { return h.subset_of(inter); });
      if (pruned) continue;
      bool pair_ok = true;
      for (const Set b : maximal_) {
        if (p3a(inter, b) || p3b(inter, b, qc1_sets_, qc1_inter_)) continue;
        pair_ok = false;
        ok = false;
        out.violations.push_back(BasicPropertyViolation<Set>{
            .property = 3,
            .q_a = q2id,
            .q_b = qid,
            .q_c = kInvalidQuorum,
            .b1 = b,
            .b2 = {},
            .detail = "neither P3a nor P3b holds for Q2=Q" +
                      std::to_string(q2id) + ", Q=Q" + std::to_string(qid) +
                      ", B=" + b.to_string()});
        if (max != 0 && out.violations.size() >= max) return false;
      }
      if (pair_ok) held.push_back(inter);
    }
  }
  return ok;
}

template <class Set>
bool BasicCheckEngine<Set>::check_property3_conference() const {
  std::vector<Set> held;
  for (const QuorumId q2id : qc2_ids_) {
    const Set q2 = sets_[q2id];
    for (QuorumId qid = 0; qid < sets_.size(); ++qid) {
      const Set inter = q2 & sets_[qid];
      if (threshold_) {
        // Under the symmetric threshold adversary the conference and
        // corrected statements coincide: for-all-B P3a is |I| >= 2k+1 (the
        // worst B removes k members of I), and for-all-B P3b is
        // |Q1 n I| >= k+1 for every class 1 quorum.
        if (!p3_pair_holds_threshold(inter, qc1_sets_)) return false;
        continue;
      }
      const bool pruned =
          std::any_of(held.begin(), held.end(),
                      [inter](Set h) { return h.subset_of(inter); });
      if (pruned) continue;
      bool all_a = true;
      bool all_b = true;
      for (const Set b : maximal_) {
        all_a = all_a && p3a(inter, b);
        all_b = all_b && p3b(inter, b, qc1_sets_, qc1_inter_);
        if (!all_a && !all_b) return false;
      }
      held.push_back(inter);
    }
  }
  return true;
}

template <class Set>
BasicCheckResult<Set> BasicCheckEngine<Set>::check(
    std::size_t max_violations) const {
  BasicCheckResult<Set> out;
  if (!check_property1(out, max_violations) &&
      max_violations != 0 && out.violations.size() >= max_violations) {
    return out;
  }
  if (!check_property2(out, max_violations) &&
      max_violations != 0 && out.violations.size() >= max_violations) {
    return out;
  }
  (void)check_property3(out, max_violations);
  return out;
}

template <class Set>
std::vector<Set> BasicCheckEngine<Set>::gather(std::uint32_t mask) const {
  std::vector<Set> out;
  for (std::size_t j = 0; j < sets_.size(); ++j) {
    if ((mask >> j) & 1u) out.push_back(sets_[j]);
  }
  return out;
}

template <class Set>
bool BasicCheckEngine<Set>::property1_holds() const {
  if (!p1_memo_) {
    bool ok = true;
    for (std::size_t a = 0; a < sets_.size() && ok; ++a) {
      for (std::size_t b = a; b < sets_.size() && ok; ++b) {
        ok = is_basic(sets_[a] & sets_[b]);
      }
    }
    p1_memo_ = ok;
  }
  return *p1_memo_;
}

template <class Set>
bool BasicCheckEngine<Set>::property2_holds(std::uint32_t qc1_mask) const {
  if (p2_memo_.empty()) p2_memo_.assign(std::size_t{1} << sets_.size(), 0);
  std::uint8_t& memo = p2_memo_[qc1_mask];
  if (memo != 0) return memo == 1;
  const std::vector<Set> qc1_sets = gather(qc1_mask);
  bool ok = true;
  for (std::size_t i = 0; i < qc1_sets.size() && ok; ++i) {
    for (std::size_t j = i; j < qc1_sets.size() && ok; ++j) {
      const Set q1q1 = qc1_sets[i] & qc1_sets[j];
      for (std::size_t c = 0; c < sets_.size() && ok; ++c) {
        ok = is_large(q1q1 & sets_[c]);
      }
    }
  }
  memo = ok ? 1 : 2;
  return ok;
}

template <class Set>
std::uint32_t BasicCheckEngine<Set>::property3_rows(std::uint32_t qc1_mask) const {
  const std::size_t slots = std::size_t{1} << sets_.size();
  if (rows_known_.empty()) {
    rows_known_.assign(slots, 0);
    rows_memo_.assign(slots, 0);
  }
  if (rows_known_[qc1_mask]) return rows_memo_[qc1_mask];
  // Enumeration evaluates rows for many class masks over the same quorum
  // list; the intersection table amortizes the m^2 masks across them.
  ensure_pair_table();
  const std::vector<Set> qc1_sets = gather(qc1_mask);
  Set qc1_inter = Set::universe(adversary_->universe_size());
  for (const Set s : qc1_sets) qc1_inter &= s;
  std::uint32_t rows = 0;
  // The held set is shared across rows: P3 for a pair depends only on the
  // intersection, not on which quorum plays Q2.
  std::vector<Set> held;
  for (std::size_t j = 0; j < sets_.size(); ++j) {
    bool row_ok = true;
    for (std::size_t q = 0; q < sets_.size() && row_ok; ++q) {
      const Set inter = inter_at(j, q);
      if (threshold_) {
        row_ok = p3_pair_holds_threshold(inter, qc1_sets);
        continue;
      }
      const bool pruned =
          std::any_of(held.begin(), held.end(),
                      [inter](Set h) { return h.subset_of(inter); });
      if (pruned) continue;
      if (p3_pair_holds(inter, qc1_sets, qc1_inter)) {
        held.push_back(inter);
      } else {
        row_ok = false;
      }
    }
    if (row_ok) rows |= std::uint32_t{1} << j;
  }
  rows_known_[qc1_mask] = 1;
  rows_memo_[qc1_mask] = rows;
  return rows;
}

template class BasicCheckEngine<ProcessSet>;
template class BasicCheckEngine<WideProcessSet>;

}  // namespace rqs
