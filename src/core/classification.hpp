// Quorum classification and small-system enumeration.
//
// The paper stresses (Figure 3) that the cardinality of a quorum says
// nothing about its class: only intersections matter. Given a bare list of
// quorums and an adversary, these utilities find class assignments
// (QC1 subset of QC2) under which the three RQS properties hold, and count
// them — tooling for the Section 6 open question "how many RQS can be
// found given some adversary structure". Width-generic: the Set parameter
// is deduced from the arguments, so callers pass ProcessSet quorums for
// n <= 64 and WideProcessSet quorums beyond (classification cost depends
// on the quorum count, not the universe width).
#pragma once

#include <cstdint>
#include <vector>

#include "core/rqs.hpp"

namespace rqs {

/// Result of searching for the best classification of a quorum list.
struct ClassificationResult {
  bool property1_ok{false};           ///< the list is a quorum system at all
  std::vector<QuorumClass> classes;   ///< best assignment found (per quorum)
  std::size_t class1_count{0};
  std::size_t class2_count{0};
};

/// Finds a class assignment maximizing (|QC1|, then |QC2|) for the given
/// quorum process sets under `adversary`, by exhaustive search over QC1
/// candidates (requires at most 20 quorums) followed by the per-quorum
/// maximal QC2 (Property 3 is independent per class 2 quorum once QC1 is
/// fixed). The search drives CheckEngine's memoized mask-parameterized
/// queries rather than assembling a RefinedQuorumSystem per candidate.
/// Returns property1_ok = false (and class-3 everywhere) when the list
/// does not even satisfy Property 1.
template <class Set>
[[nodiscard]] ClassificationResult classify(const std::vector<Set>& quorums,
                                            const BasicAdversary<Set>& adversary);

/// Counts all valid (QC1, QC2) assignments (including the trivial empty
/// one) for the given quorums, i.e. the number of distinct refined quorum
/// systems sharing this quorum list. Exhaustive; at most 20 quorums.
template <class Set>
[[nodiscard]] std::uint64_t count_classifications(
    const std::vector<Set>& quorums, const BasicAdversary<Set>& adversary);

/// Counts collections of at most `max_quorums` distinct non-empty subsets
/// of {0..n-1} that satisfy Property 1 pairwise under `adversary` —
/// an exhaustive answer to "how many (plain) quorum systems exist" for
/// tiny universes (n <= 6 recommended). Collections are unordered;
/// the empty collection is not counted.
template <class Set>
[[nodiscard]] std::uint64_t count_p1_collections(
    std::size_t n, const BasicAdversary<Set>& adversary,
    std::size_t max_quorums);

// Instantiated once in classification.cpp for the two supported widths.
extern template ClassificationResult classify<ProcessSet>(
    const std::vector<ProcessSet>&, const BasicAdversary<ProcessSet>&);
extern template ClassificationResult classify<WideProcessSet>(
    const std::vector<WideProcessSet>&, const BasicAdversary<WideProcessSet>&);
extern template std::uint64_t count_classifications<ProcessSet>(
    const std::vector<ProcessSet>&, const BasicAdversary<ProcessSet>&);
extern template std::uint64_t count_classifications<WideProcessSet>(
    const std::vector<WideProcessSet>&, const BasicAdversary<WideProcessSet>&);
extern template std::uint64_t count_p1_collections<ProcessSet>(
    std::size_t, const BasicAdversary<ProcessSet>&, std::size_t);
extern template std::uint64_t count_p1_collections<WideProcessSet>(
    std::size_t, const BasicAdversary<WideProcessSet>&, std::size_t);

}  // namespace rqs
